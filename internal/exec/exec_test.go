package exec

import (
	"testing"

	"ccsvm/internal/mem"
)

// microQ is a minimal stand-in for the sim engine's event queue: a FIFO of
// thunks the gate's Drive loop dispatches one at a time. It exercises the
// cooperative baton protocol without pulling the full engine into the
// package's unit tests.
type microQ struct{ q []func() }

func (e *microQ) at(f func()) { e.q = append(e.q, f) }

func (e *microQ) step() bool {
	if len(e.q) == 0 {
		return false
	}
	f := e.q[0]
	e.q = e.q[1:]
	f()
	return true
}

// hostCore drives one thread the way a core model does: TryNext with itself
// as the resume continuation, completions delivered from "engine" context
// (a microQ thunk) one op later.
type hostCore struct {
	th      *Thread
	eng     *microQ
	respond func(Op) Result
	ops     []Op
}

func (h *hostCore) fetch() {
	op, st := h.th.TryNext(h.fetch)
	if st != NextOp {
		return
	}
	h.ops = append(h.ops, op)
	o := op
	h.eng.at(func() {
		h.th.Complete(h.respond(o))
		h.fetch()
	})
}

// drive runs a thread to completion on the host side, answering every
// operation with the given responder, and returns the ops seen.
func drive(t *testing.T, th *Thread, respond func(Op) Result) []Op {
	t.Helper()
	ops := driveRaw(th, respond)
	if err := th.Err(); err != nil {
		t.Fatalf("thread panicked: %v", err)
	}
	return ops
}

func driveRaw(th *Thread, respond func(Op) Result) []Op {
	h := &hostCore{th: th, eng: &microQ{}, respond: respond}
	th.Start()
	h.eng.at(h.fetch)
	th.gate.Drive(h.eng.step)
	return h.ops
}

func TestThreadBasicOps(t *testing.T) {
	var observed uint64
	th := NewThread(NewGate(), 7, "worker", func(ctx *Context) {
		if ctx.ThreadID() != 7 {
			t.Error("wrong thread id")
		}
		ctx.Compute(100)
		ctx.Store32(0x1000, 42)
		observed = uint64(ctx.Load32(0x1000))
	})
	ops := drive(t, th, func(op Op) Result {
		if op.Kind == OpLoad {
			return Result{Value: 42}
		}
		return Result{}
	})
	if len(ops) != 3 {
		t.Fatalf("saw %d ops, want 3", len(ops))
	}
	if ops[0].Kind != OpCompute || ops[0].Instrs != 100 {
		t.Fatalf("first op = %+v", ops[0])
	}
	if ops[1].Kind != OpStore || ops[1].Addr != 0x1000 || ops[1].Value != 42 || ops[1].Size != 4 {
		t.Fatalf("second op = %+v", ops[1])
	}
	if ops[2].Kind != OpLoad {
		t.Fatalf("third op = %+v", ops[2])
	}
	if observed != 42 {
		t.Fatalf("thread observed %d", observed)
	}
	if !th.Finished() {
		t.Fatal("thread not marked finished")
	}
}

func TestContextTypedAccessors(t *testing.T) {
	memory := map[mem.VAddr]uint64{}
	th := NewThread(NewGate(), 0, "typed", func(ctx *Context) {
		ctx.Store64(0x10, 0xdeadbeef12345678)
		ctx.Store8(0x20, 0xab)
		ctx.StoreFloat64(0x30, 3.5)
		ctx.StoreFloat32(0x40, 1.25)
		if ctx.Load64(0x10) != 0xdeadbeef12345678 {
			t.Error("Load64 wrong")
		}
		if ctx.Load8(0x20) != 0xab {
			t.Error("Load8 wrong")
		}
		if ctx.LoadFloat64(0x30) != 3.5 {
			t.Error("LoadFloat64 wrong")
		}
		if ctx.LoadFloat32(0x40) != 1.25 {
			t.Error("LoadFloat32 wrong")
		}
	})
	drive(t, th, func(op Op) Result {
		switch op.Kind {
		case OpStore:
			memory[op.Addr] = op.Value
			return Result{}
		case OpLoad:
			return Result{Value: memory[op.Addr]}
		}
		return Result{}
	})
}

func TestContextAtomics(t *testing.T) {
	val := uint64(10)
	th := NewThread(NewGate(), 0, "atomics", func(ctx *Context) {
		if old := ctx.AtomicAdd64(0x100, 5); old != 10 {
			t.Errorf("AtomicAdd64 old = %d", old)
		}
		if old := ctx.AtomicAdd32(0x100, 1); old != 15 {
			t.Errorf("AtomicAdd32 old = %d", old)
		}
		if !ctx.AtomicCAS32(0x100, 16, 99) {
			t.Error("CAS should succeed")
		}
		if ctx.AtomicCAS32(0x100, 16, 77) {
			t.Error("CAS should fail")
		}
		if old := ctx.AtomicExchange32(0x100, 1); old != 99 {
			t.Errorf("exchange old = %d", old)
		}
	})
	drive(t, th, func(op Op) Result {
		if op.Kind != OpRMW {
			t.Fatalf("expected RMW, got %v", op.Kind)
		}
		old := val
		val = op.ApplyRMW(old)
		return Result{Value: old}
	})
}

func TestContextSyscall(t *testing.T) {
	th := NewThread(NewGate(), 0, "sys", func(ctx *Context) {
		if ret := ctx.Syscall(3, 1, 2); ret != 42 {
			t.Errorf("syscall returned %d", ret)
		}
	})
	ops := drive(t, th, func(op Op) Result {
		if op.Kind == OpSyscall {
			if op.Syscall != 3 || len(op.Args) != 2 {
				t.Errorf("syscall op = %+v", op)
			}
			return Result{Value: 42}
		}
		return Result{}
	})
	if len(ops) != 1 {
		t.Fatalf("saw %d ops", len(ops))
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	th := NewThread(NewGate(), 0, "zero", func(ctx *Context) {
		ctx.Compute(0)
		ctx.Compute(-5)
	})
	ops := drive(t, th, func(Op) Result { return Result{} })
	if len(ops) != 0 {
		t.Fatalf("zero/negative compute produced %d ops", len(ops))
	}
}

func TestThreadPanicIsCaptured(t *testing.T) {
	th := NewThread(NewGate(), 0, "boom", func(ctx *Context) {
		ctx.Compute(1)
		panic("workload bug")
	})
	ops := driveRaw(th, func(Op) Result { return Result{} })
	if len(ops) != 1 || ops[0].Kind != OpCompute {
		t.Fatalf("ops = %+v, want the compute op first", ops)
	}
	if !th.Finished() {
		t.Fatal("panicked thread not finished")
	}
	if th.Err() != "workload bug" {
		t.Fatalf("Err() = %v", th.Err())
	}
}

func TestThreadKill(t *testing.T) {
	th := NewThread(NewGate(), 0, "spin", func(ctx *Context) {
		for {
			ctx.Compute(10)
		}
	})
	// Publish the first op but never complete it: Drive returns with the
	// thread parked mid-operation, the state machines tear threads down in.
	eng := &microQ{}
	th.Start()
	eng.at(func() {
		if op, st := th.TryNext(nil); st != NextOp || op.Kind != OpCompute {
			t.Errorf("first fetch = %v, %v", op, st)
		}
	})
	th.gate.Drive(eng.step)
	th.Kill()
	if !th.Finished() {
		t.Fatal("killed thread not finished")
	}
	if th.Err() != nil {
		t.Fatalf("kill should not report an error, got %v", th.Err())
	}
	// Killing again is a no-op.
	th.Kill()
}

func TestThreadDoubleStartPanics(t *testing.T) {
	th := NewThread(NewGate(), 0, "x", func(ctx *Context) {})
	driveRaw(th, func(Op) Result { return Result{} })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double start")
		}
	}()
	th.Start()
}

func TestOpKindString(t *testing.T) {
	kinds := []OpKind{OpCompute, OpLoad, OpStore, OpRMW, OpSyscall}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestThreadKillBeforeLaunch(t *testing.T) {
	ran := false
	th := NewThread(NewGate(), 0, "parked", func(ctx *Context) {
		ran = true
		ctx.Compute(10)
	})
	// Started but never stepped: the workload goroutine launches lazily on
	// the first TryNext, so Kill must tear the thread down without one.
	th.Start()
	th.Kill()
	if !th.Finished() {
		t.Fatal("killed unlaunched thread not finished")
	}
	// A later fetch (a core pulling the thread from its run queue after a
	// machine shutdown) must not resurrect the workload.
	if _, st := th.TryNext(nil); st != NextDone {
		t.Fatal("TryNext on a killed thread returned an op")
	}
	if ran {
		t.Fatal("killed thread's workload function ran")
	}
}

// TestGateCrossThreadCompletionOrder pins the queue discipline: when one
// event completes several threads' operations, their between-ops code runs
// in completion order.
func TestGateCrossThreadCompletionOrder(t *testing.T) {
	g := NewGate()
	eng := &microQ{}
	var order []int
	threads := make([]*Thread, 3)
	for i := range threads {
		id := i
		threads[i] = NewThread(g, id, "t", func(ctx *Context) {
			ctx.Compute(1)
			order = append(order, id)
		})
	}
	// Launch each thread (publishing its compute op), then complete all
	// three from a single "event" in reverse launch order — registering a
	// fetch continuation first, like a core does, so each thread's exit is
	// observed.
	eng.at(func() {
		for _, th := range threads {
			th.Start()
			if _, st := th.TryNext(nil); st != NextOp {
				t.Errorf("launch fetch = %v", st)
			}
		}
		for _, i := range []int{2, 0, 1} {
			th := threads[i]
			var fetch func()
			fetch = func() { th.TryNext(fetch) }
			if _, st := th.TryNext(fetch); st != NextWait {
				t.Errorf("pre-completion fetch = %v, want NextWait", st)
			}
			th.Complete(Result{})
		}
	})
	g.Drive(eng.step)
	want := []int{2, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("activation order %v, want %v", order, want)
		}
	}
}
