package ccsvm_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ccsvm"
)

// TestCanonicalBytesShape pins the gross shape of the canonical encoding:
// the version line leads, the identity fields follow, and the inactive
// machine's configuration never appears.
func TestCanonicalBytesShape(t *testing.T) {
	spec := ccsvm.RunSpec{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: ccsvm.DefaultParams()}
	got := string(spec.CanonicalBytes())
	if !strings.HasPrefix(got, "ccsvm-spec-v2\nworkload=\"matmul\"\nsystem=\"ccsvm\"\n") {
		t.Fatalf("canonical encoding does not lead with version and identity:\n%s", got)
	}
	if !strings.Contains(got, "ccsvm.NumMTTOPs=") {
		t.Errorf("ccsvm config missing from canonical encoding:\n%s", got)
	}
	if strings.Contains(got, "apu.") {
		t.Errorf("inactive apu config leaked into a ccsvm spec's encoding:\n%s", got)
	}

	apuSpec := ccsvm.RunSpec{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCPU), Params: ccsvm.DefaultParams()}
	apuGot := string(apuSpec.CanonicalBytes())
	if !strings.Contains(apuGot, "apu.NumCPUs=") || strings.Contains(apuGot, "ccsvm.NumCPUs=") {
		t.Errorf("cpu spec should encode only the apu config:\n%s", apuGot)
	}
}

// TestHashIgnoresProvenance: Tag, Preset, and Overrides are labels and
// provenance. Only the resolved configuration is identity, so a preset-built
// system hashes identically to a hand-built one.
func TestHashIgnoresProvenance(t *testing.T) {
	base := ccsvm.RunSpec{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: ccsvm.DefaultParams()}
	tagged := base
	tagged.Tag = "row-7"
	if base.Hash() != tagged.Hash() {
		t.Error("Tag changed the content address")
	}

	built, err := ccsvm.BuildSpec("matmul", ccsvm.SystemCCSVM, "ccsvm-base", nil, ccsvm.DefaultParams())
	if err != nil {
		t.Fatalf("BuildSpec: %v", err)
	}
	if built.Preset == "" {
		t.Fatal("BuildSpec did not record the preset as provenance")
	}
	if built.Hash() != base.Hash() {
		t.Error("preset-built system and hand-built default system with equal configs have different addresses")
	}

	// An override that actually changes the configuration must change the
	// address; recording the same value as the default must not.
	widened, err := ccsvm.BuildSpec("matmul", ccsvm.SystemCCSVM, "", []string{"ccsvm.NumMTTOPs=12"}, ccsvm.DefaultParams())
	if err != nil {
		t.Fatalf("BuildSpec override: %v", err)
	}
	if widened.Hash() == base.Hash() {
		t.Error("a real configuration change did not change the content address")
	}
	noop, err := ccsvm.BuildSpec("matmul", ccsvm.SystemCCSVM, "", []string{"ccsvm.NumMTTOPs=10"}, ccsvm.DefaultParams())
	if err != nil {
		t.Fatalf("BuildSpec noop override: %v", err)
	}
	if noop.Hash() != base.Hash() {
		t.Error("an override writing the default value changed the content address")
	}
}

// TestProtocolSplitsCacheAddresses is the cache-poisoning regression: a MESI
// run and a MOESI run of the same workload must never share a content address
// (v1 specs did not encode the protocol, so a MESI request could have been
// served a cached MOESI result), while the two routes to MESI — the
// ccsvm-base-mesi preset and an explicit override on the default machine —
// must converge on one address, since provenance is not identity.
func TestProtocolSplitsCacheAddresses(t *testing.T) {
	p := ccsvm.DefaultParams()
	moesi, err := ccsvm.BuildSpec("matmul", ccsvm.SystemCCSVM, "", nil, p)
	if err != nil {
		t.Fatal(err)
	}
	mesi, err := ccsvm.BuildSpec("matmul", ccsvm.SystemCCSVM, "", []string{"ccsvm.coherence.protocol=mesi"}, p)
	if err != nil {
		t.Fatal(err)
	}
	if moesi.Hash() == mesi.Hash() {
		t.Fatal("MESI and MOESI specs share a content address: the cache would serve cross-protocol results")
	}
	preset, err := ccsvm.BuildSpec("matmul", ccsvm.SystemCCSVM, "ccsvm-base-mesi", nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if preset.Hash() != mesi.Hash() {
		t.Fatal("ccsvm-base-mesi preset and explicit mesi override resolve to different addresses")
	}
}

// TestHashNormalizesUnusedParams: params a workload declares it does not
// read cannot split the key space, while workloads that do read them keep
// them as identity.
func TestHashNormalizesUnusedParams(t *testing.T) {
	p := ccsvm.DefaultParams()
	a := ccsvm.RunSpec{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: p}
	b := a
	b.Params.Density = 0.9
	if a.Hash() != b.Hash() {
		t.Error("matmul does not use Density, but Density changed its address")
	}

	sa := ccsvm.RunSpec{Workload: "sparse", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: p}
	sb := sa
	sb.Params.Density = 0.9
	if sa.Hash() == sb.Hash() {
		t.Error("sparsemm uses Density, but Density did not change its address")
	}

	// IncludeInit only affects opencl runs.
	ca := ccsvm.RunSpec{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: p}
	cb := ca
	cb.Params.IncludeInit = true
	if ca.Hash() != cb.Hash() {
		t.Error("IncludeInit changed a ccsvm run's address")
	}
	oa := ccsvm.RunSpec{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemOpenCL), Params: p}
	ob := oa
	ob.Params.IncludeInit = true
	if oa.Hash() == ob.Hash() {
		t.Error("IncludeInit did not change an opencl run's address")
	}
}

// TestHashIgnoresInactiveConfig: garbage in the configuration of the machine
// the spec does not run on is not identity.
func TestHashIgnoresInactiveConfig(t *testing.T) {
	a := ccsvm.RunSpec{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCPU), Params: ccsvm.DefaultParams()}
	b := a
	b.System.CCSVM.NumMTTOPs = 99
	if a.Hash() != b.Hash() {
		t.Error("inactive ccsvm config changed a cpu spec's address")
	}
}

// TestCanonicalBytesStable: the encoding is a pure function of the spec.
func TestCanonicalBytesStable(t *testing.T) {
	spec := ccsvm.RunSpec{Workload: "barneshut", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: ccsvm.DefaultParams()}
	if !bytes.Equal(spec.CanonicalBytes(), spec.CanonicalBytes()) {
		t.Fatal("CanonicalBytes is not deterministic")
	}
}

// TestBuildSpecTypedErrors pins the typed failures service handlers map to
// status codes.
func TestBuildSpecTypedErrors(t *testing.T) {
	p := ccsvm.DefaultParams()
	cases := []struct {
		name             string
		workload, preset string
		kind             ccsvm.SystemKind
		overrides        []string
		want             error
	}{
		{name: "unknown workload", workload: "nope", kind: ccsvm.SystemCCSVM, want: ccsvm.ErrUnknownWorkload},
		{name: "unknown preset", workload: "matmul", preset: "nope", want: ccsvm.ErrUnknownPreset},
		{name: "unknown system", workload: "matmul", kind: "vax", want: ccsvm.ErrUnknownSystem},
		{name: "empty system no preset", workload: "matmul", want: ccsvm.ErrUnknownSystem},
		{name: "unsupported pair", workload: "sparse", kind: ccsvm.SystemOpenCL, want: ccsvm.ErrUnsupportedPair},
		{name: "bad override path", workload: "matmul", kind: ccsvm.SystemCCSVM,
			overrides: []string{"ccsvm.NoSuchField=1"}, want: ccsvm.ErrUnknownPath},
		{name: "wrong machine override", workload: "matmul", kind: ccsvm.SystemCCSVM,
			overrides: []string{"apu.NumCPUs=2"}, want: ccsvm.ErrMachineMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ccsvm.BuildSpec(tc.workload, tc.kind, tc.preset, tc.overrides, p)
			if !errors.Is(err, tc.want) {
				t.Fatalf("BuildSpec error = %v, want errors.Is(_, %v)", err, tc.want)
			}
		})
	}

	// The happy path of preset defaulting: empty kind with a preset uses the
	// preset's default system.
	spec, err := ccsvm.BuildSpec("matmul", "", "apu-base", nil, p)
	if err != nil {
		t.Fatalf("BuildSpec with preset default kind: %v", err)
	}
	if spec.System.Kind != ccsvm.SystemCPU {
		t.Fatalf("preset default kind = %s, want cpu", spec.System.Kind)
	}
}
