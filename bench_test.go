// Package ccsvm_test holds the benchmark harness: one testing.B benchmark per
// table/figure series of the paper's evaluation (see the experiment index in
// DESIGN.md). Every benchmark resolves its (workload, system) pair through
// the ccsvm registry, so the harness needs no knowledge of the per-system
// entry points. The benchmarks run small problem instances so `go test
// -bench` stays fast; cmd/paper-figs runs the full sweeps. Each benchmark
// reports the simulated time (sim_us) and off-chip traffic (dram_accesses) of
// the system it models alongside the host-time metrics Go reports natively.
package ccsvm_test

import (
	"fmt"
	"testing"

	"ccsvm"
)

const benchSeed = 42

// benchRun resolves workload/kind through the registry and runs it b.N times,
// reporting simulated time, off-chip traffic, allocations, and simulator
// throughput (engine events per host second — the headline number the hot
// path is optimized for; see ARCHITECTURE.md, "Hot path & pooling").
func benchRun(b *testing.B, workload string, kind ccsvm.SystemKind, p ccsvm.Params) {
	b.Helper()
	w, ok := ccsvm.Lookup(workload)
	if !ok {
		b.Fatalf("workload %q not registered", workload)
	}
	sys := ccsvm.MustSystem(kind)
	// One arena across iterations, like a sweep worker: after the first run
	// warms it, iterations measure the steady state the Runner and the bench
	// CLI operate in. Results are bit-identical with or without it.
	sys.Arena = ccsvm.NewArena()
	p.Seed = benchSeed
	b.ReportAllocs()
	var last ccsvm.Result
	var events float64
	for i := 0; i < b.N; i++ {
		r, err := w.Run(sys, p)
		if err != nil {
			b.Fatal(err)
		}
		last = r
		events += r.Metrics["sim.events"]
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Time)/1e6, "sim_us/op")
	b.ReportMetric(float64(last.DRAMAccesses), "dram_accesses/op")
	b.ReportMetric(events/float64(b.N), "sim_events/op")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(events/sec, "sim_events/sec")
	}
}

// Figure 5: dense matrix multiply.

func BenchmarkFig5MatMulCCSVM(b *testing.B) {
	benchRun(b, "matmul", ccsvm.SystemCCSVM, ccsvm.Params{N: 32})
}

func BenchmarkFig5MatMulAPUOpenCL(b *testing.B) {
	benchRun(b, "matmul", ccsvm.SystemOpenCL, ccsvm.Params{N: 32})
}

func BenchmarkFig5MatMulAPUCPU(b *testing.B) {
	benchRun(b, "matmul", ccsvm.SystemCPU, ccsvm.Params{N: 32})
}

// Figure 6: all-pairs shortest path.

func BenchmarkFig6APSPCCSVM(b *testing.B) {
	benchRun(b, "apsp", ccsvm.SystemCCSVM, ccsvm.Params{N: 20})
}

func BenchmarkFig6APSPAPUOpenCL(b *testing.B) {
	benchRun(b, "apsp", ccsvm.SystemOpenCL, ccsvm.Params{N: 20})
}

func BenchmarkFig6APSPAPUCPU(b *testing.B) {
	benchRun(b, "apsp", ccsvm.SystemCPU, ccsvm.Params{N: 20})
}

// Figure 7: Barnes-Hut.

func BenchmarkFig7BarnesHutCCSVM(b *testing.B) {
	benchRun(b, "barneshut", ccsvm.SystemCCSVM, ccsvm.Params{N: 96})
}

func BenchmarkFig7BarnesHutAPUCPU(b *testing.B) {
	benchRun(b, "barneshut", ccsvm.SystemCPU, ccsvm.Params{N: 96})
}

func BenchmarkFig7BarnesHutAPUPthreads(b *testing.B) {
	benchRun(b, "barneshut", ccsvm.SystemPthreads, ccsvm.Params{N: 96})
}

// Figure 8: sparse matrix multiply (size and density axes).

func BenchmarkFig8SparseSizeCCSVM(b *testing.B) {
	benchRun(b, "sparse", ccsvm.SystemCCSVM, ccsvm.Params{N: 48, Density: 0.02})
}

func BenchmarkFig8SparseSizeAPUCPU(b *testing.B) {
	benchRun(b, "sparse", ccsvm.SystemCPU, ccsvm.Params{N: 48, Density: 0.02})
}

func BenchmarkFig8SparseDensityCCSVM(b *testing.B) {
	benchRun(b, "sparse", ccsvm.SystemCCSVM, ccsvm.Params{N: 48, Density: 0.06})
}

// Figure 9: off-chip DRAM accesses. The benchmark runs the Figure 9 pair
// sweep through the Runner and reports each system's traffic; the
// assertion-level comparison lives in the workloads tests.

func BenchmarkFig9DRAMAccesses(b *testing.B) {
	specs := []ccsvm.RunSpec{
		{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: ccsvm.Params{N: 32, Seed: benchSeed}},
		{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemOpenCL), Params: ccsvm.Params{N: 32, Seed: benchSeed}},
	}
	runner := &ccsvm.Runner{Parallel: 2}
	b.ReportAllocs()
	var last []ccsvm.RunResult
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(specs)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last[0].Result.DRAMAccesses), "ccsvm_dram/op")
	b.ReportMetric(float64(last[1].Result.DRAMAccesses), "apu_dram/op")
}

// BenchmarkRunnerScaling measures sweep throughput through the Runner's
// worker pool: the same batch of paper-pair specs at 1/2/4/8/16 workers, with
// each worker reusing its arena across runs. The events/sec ratio between
// worker counts is the parallel-scaling trajectory cmd/ccsvm-bench records
// into BENCH_*.json as the scaling_w<N> series.
func BenchmarkRunnerScaling(b *testing.B) {
	// Four copies of every registered pair: enough runs per sweep that the
	// pool stays saturated at 16 workers.
	base := ccsvm.Pairs(ccsvm.Params{N: 16, Density: 0.05, Seed: benchSeed})
	var specs []ccsvm.RunSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, base...)
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runner := &ccsvm.Runner{Parallel: workers}
			b.ReportAllocs()
			var events float64
			for i := 0; i < b.N; i++ {
				res, err := runner.Run(specs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					events += r.Result.Metrics["sim.events"]
				}
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(events/sec, "sim_events/sec")
			}
		})
	}
}

// Figures 3/4: vector-add offload cost by programming model.

func BenchmarkCodeComparisonVectorAddXthreads(b *testing.B) {
	benchRun(b, "vectoradd", ccsvm.SystemCCSVM, ccsvm.Params{N: 256})
}

func BenchmarkCodeComparisonVectorAddOpenCL(b *testing.B) {
	benchRun(b, "vectoradd", ccsvm.SystemOpenCL, ccsvm.Params{N: 256, IncludeInit: true})
}
