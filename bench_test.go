// Package ccsvm_test holds the benchmark harness: one testing.B benchmark per
// table/figure series of the paper's evaluation (see the experiment index in
// DESIGN.md). The benchmarks run small problem instances so `go test -bench`
// stays fast; cmd/paper-figs runs the full sweeps. Each benchmark reports the
// simulated time (sim_us) and off-chip traffic (dram_accesses) of the system
// it models alongside the host-time metrics Go reports natively.
package ccsvm_test

import (
	"testing"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/workloads"
)

const benchSeed = 42

func report(b *testing.B, r workloads.Result) {
	b.Helper()
	b.ReportMetric(float64(r.Time)/1e6, "sim_us/op")
	b.ReportMetric(float64(r.DRAMAccesses), "dram_accesses/op")
}

// Figure 5: dense matrix multiply.

func BenchmarkFig5MatMulCCSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.MatMulXthreads(core.DefaultConfig(), 32, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig5MatMulAPUOpenCL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.MatMulOpenCL(apu.DefaultConfig(), 32, benchSeed, false)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig5MatMulAPUCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.MatMulCPU(apu.DefaultConfig(), 32, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

// Figure 6: all-pairs shortest path.

func BenchmarkFig6APSPCCSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.APSPXthreads(core.DefaultConfig(), 20, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig6APSPAPUOpenCL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.APSPOpenCL(apu.DefaultConfig(), 20, benchSeed, false)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig6APSPAPUCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.APSPCPU(apu.DefaultConfig(), 20, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

// Figure 7: Barnes-Hut.

func BenchmarkFig7BarnesHutCCSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.BarnesHutXthreads(core.DefaultConfig(), 96, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig7BarnesHutAPUCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.BarnesHutCPU(apu.DefaultConfig(), 96, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig7BarnesHutAPUPthreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.BarnesHutPthreads(apu.DefaultConfig(), 96, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

// Figure 8: sparse matrix multiply (size and density axes).

func BenchmarkFig8SparseSizeCCSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.SparseMMXthreads(core.DefaultConfig(), 48, 0.02, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig8SparseSizeAPUCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.SparseMMCPU(apu.DefaultConfig(), 48, 0.02, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig8SparseDensityCCSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.SparseMMXthreads(core.DefaultConfig(), 48, 0.06, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

// Figure 9: off-chip DRAM accesses (the benchmark runs the CCSVM and OpenCL
// offloads and reports their traffic; the assertion-level comparison lives in
// the workloads tests).

func BenchmarkFig9DRAMAccesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ccsvm, err := workloads.MatMulXthreads(core.DefaultConfig(), 32, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		ocl, err := workloads.MatMulOpenCL(apu.DefaultConfig(), 32, benchSeed, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ccsvm.DRAMAccesses), "ccsvm_dram/op")
		b.ReportMetric(float64(ocl.DRAMAccesses), "apu_dram/op")
	}
}

// Figures 3/4: vector-add offload cost by programming model.

func BenchmarkCodeComparisonVectorAddXthreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.VectorAddXthreads(core.DefaultConfig(), 256, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkCodeComparisonVectorAddOpenCL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workloads.VectorAddOpenCL(apu.DefaultConfig(), 256, benchSeed, true)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}
