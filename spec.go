package ccsvm

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"reflect"
	"strconv"

	"ccsvm/internal/resultcache"
	"ccsvm/internal/sim"
)

// Canonical spec identity (see ARCHITECTURE.md, "Serving & caching").
//
// The determinism contract makes a Result a pure function of its RunSpec, so
// a canonical serialization of the spec is a content address for the result.
// CanonicalBytes renders the spec as a versioned, line-oriented text form
// with a stable field order; Hash folds it through SHA-256 into the cache
// key used by internal/resultcache and the sweep service.
//
// Two normalizations make the address about content, not provenance:
//
//   - Only fields that can influence the result are encoded. Tag, Preset and
//     Overrides are labels/provenance — a preset-built system and a manually
//     configured one with the same resolved configuration share one address.
//     Only the machine configuration the Kind actually runs on is encoded,
//     so garbage in the inactive config field cannot split the key space.
//   - Params the workload declares it does not read (UsesDensity,
//     UsesIncludeInit — and IncludeInit only ever affects opencl runs) are
//     zeroed before encoding, so matmul at density 0.01 and 0.5 share one
//     entry.
//
// The encoding walks the configuration structs in field-declaration order,
// which is exactly what makes it sensitive to schema evolution: adding,
// removing, renaming or reordering a config field changes every hash. That is
// deliberate — stale cache entries must not be served for a changed schema —
// but it must never happen silently, which is what the golden fixture in
// testdata/spec_hashes.json enforces: if hashes drift, the test fails until
// SpecFormatVersion is bumped (invalidating all previous addresses at once)
// and the fixture is regenerated.

// SpecFormatVersion is the version of the canonical RunSpec encoding. It is
// the first line of CanonicalBytes, so bumping it changes every hash and
// cleanly invalidates every previously persisted cache entry. Bump it
// whenever the encoding or the configuration schema changes shape.
//
// v2: the CCSVM configuration grew Coherence.Protocol — v1 addresses did not
// encode the coherence protocol, so they must all be retired or a MESI run
// could be served a cached MOESI result.
const SpecFormatVersion = 2

// CacheKey is the content address of a RunSpec: the SHA-256 of its canonical
// encoding. It is the key type of the result cache.
type CacheKey = resultcache.Key

// Typed failures of spec resolution (BuildSpec and the sweep service),
// matched with errors.Is.
var (
	// ErrUnknownWorkload reports a workload name absent from the registry.
	ErrUnknownWorkload = errors.New("unknown workload")
	// ErrUnknownPreset reports a preset name absent from the registry.
	ErrUnknownPreset = errors.New("unknown preset")
	// ErrUnknownSystem reports a system kind that names no machine model.
	ErrUnknownSystem = errors.New("unknown system kind")
)

// BuildSpec resolves (workload, system kind, preset, overrides, params) into
// a runnable RunSpec, recording the preset and overrides on the spec as
// provenance. An empty preset means the kind's Table 2 default
// configuration; an empty kind with a preset means the preset's default
// system. Failures are typed: ErrUnknownWorkload, ErrUnknownPreset,
// ErrUnknownSystem, ErrUnsupportedPair, or an OverrideError.
func BuildSpec(workload string, kind SystemKind, preset string, overrides []string, p Params) (RunSpec, error) {
	w, ok := Lookup(workload)
	if !ok {
		return RunSpec{}, fmt.Errorf("%w %q", ErrUnknownWorkload, workload)
	}
	var sys System
	if preset != "" {
		pr, ok := LookupPreset(preset)
		if !ok {
			return RunSpec{}, fmt.Errorf("%w %q", ErrUnknownPreset, preset)
		}
		if kind == "" {
			kind = pr.DefaultKind()
		}
		var err error
		if sys, err = pr.System(kind); err != nil {
			return RunSpec{}, err
		}
	} else {
		if kind == "" {
			return RunSpec{}, fmt.Errorf("%w: empty (name a system or a preset)", ErrUnknownSystem)
		}
		var err error
		if sys, err = NewSystem(kind); err != nil {
			return RunSpec{}, fmt.Errorf("%w %q", ErrUnknownSystem, kind)
		}
	}
	if !w.Supports(kind) {
		return RunSpec{}, fmt.Errorf("%s on %s: %w (supported: %v)",
			workload, kind, ErrUnsupportedPair, w.SystemKinds())
	}
	if err := ApplyOverrides(&sys, overrides); err != nil {
		return RunSpec{}, err
	}
	return RunSpec{
		Workload:  workload,
		System:    sys,
		Params:    p,
		Preset:    preset,
		Overrides: overrides,
	}, nil
}

// CanonicalBytes returns the versioned canonical encoding of the spec: a
// line-oriented "path=value" rendering with stable field order and
// normalized defaults (see the package comment above). Specs with equal
// CanonicalBytes produce bit-identical Results under the determinism
// contract.
func (s RunSpec) CanonicalBytes() []byte {
	var b []byte
	b = append(b, "ccsvm-spec-v"...)
	b = strconv.AppendInt(b, SpecFormatVersion, 10)
	b = append(b, '\n')
	b = appendField(b, "workload", reflect.ValueOf(s.Workload))
	b = appendField(b, "system", reflect.ValueOf(string(s.System.Kind)))

	p := s.normalizedParams()
	b = appendField(b, "param.n", reflect.ValueOf(p.N))
	b = appendField(b, "param.density", reflect.ValueOf(p.Density))
	b = appendField(b, "param.seed", reflect.ValueOf(p.Seed))
	b = appendField(b, "param.include_init", reflect.ValueOf(p.IncludeInit))

	// Only the machine configuration this Kind runs on feeds the address.
	if s.System.Kind == SystemCCSVM {
		b = appendConfig(b, "ccsvm", reflect.ValueOf(s.System.CCSVM))
	} else {
		b = appendConfig(b, "apu", reflect.ValueOf(s.System.APU))
	}
	return b
}

// Hash returns the spec's content address: the SHA-256 of CanonicalBytes.
func (s RunSpec) Hash() CacheKey {
	return CacheKey(sha256.Sum256(s.CanonicalBytes()))
}

// Normalized returns the spec with its params canonicalized the way
// CanonicalBytes sees them — fields the workload declares it does not read
// are zeroed. Every spec with the same Hash has the same Normalized params,
// which is what lets the sweep service serve identical response bytes to
// every caller of one content address.
func (s RunSpec) Normalized() RunSpec {
	s.Params = s.normalizedParams()
	return s
}

// normalizedParams zeroes the Params fields that cannot influence this
// spec's Result: Density unless the workload declares UsesDensity, and
// IncludeInit unless the workload declares UsesIncludeInit and the system is
// the OpenCL machine (the only one with a measurable init phase). Unknown
// workloads are left verbatim — the spec still hashes, it just forgoes the
// normalization.
func (s RunSpec) normalizedParams() Params {
	p := s.Params
	w, ok := Lookup(s.Workload)
	if !ok {
		return p
	}
	if !w.UsesDensity {
		p.Density = 0
	}
	if !w.UsesIncludeInit || s.System.Kind != SystemOpenCL {
		p.IncludeInit = false
	}
	return p
}

// specDurationType is sim.Duration's reflect.Type; durations encode as their
// raw picosecond count.
var specDurationType = reflect.TypeOf(sim.Duration(0))

// appendConfig walks a configuration struct in field-declaration order,
// appending one "prefix.Field=value" line per exported scalar leaf. The
// declaration order is the schema: any change to it changes every hash,
// which the golden-fixture test turns into a visible SpecFormatVersion bump.
func appendConfig(b []byte, prefix string, v reflect.Value) []byte {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		path := prefix + "." + f.Name
		fv := v.Field(i)
		if fv.Type() != specDurationType && fv.Kind() == reflect.Struct {
			b = appendConfig(b, path, fv)
			continue
		}
		b = appendField(b, path, fv)
	}
	return b
}

// appendField appends one canonical "path=value" line. Floats use the
// shortest round-tripping form, so the encoding is exact; unsupported kinds
// panic — the configuration schema is scalars and structs of scalars, and a
// new kind must be given an explicit canonical form here before it can be
// hashed.
func appendField(b []byte, path string, v reflect.Value) []byte {
	b = append(b, path...)
	b = append(b, '=')
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b = strconv.AppendInt(b, v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		b = strconv.AppendUint(b, v.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		b = strconv.AppendFloat(b, v.Float(), 'g', -1, 64)
	case reflect.Bool:
		b = strconv.AppendBool(b, v.Bool())
	case reflect.String:
		b = strconv.AppendQuote(b, v.String())
	default:
		panic(fmt.Sprintf("ccsvm: no canonical encoding for %s (kind %s) at %s", v.Type(), v.Kind(), path))
	}
	return append(b, '\n')
}
