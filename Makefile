# Developer entry points; CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: build test lint fmt bench stress serve

build:
	go build ./...

test:
	go test ./...

# The repository's own static-analysis suite (internal/lint, run by CI):
# determinism, pool-ownership, engine-context and hot-path invariants, plus
# //ccsvm: directive hygiene. See ARCHITECTURE.md "Static enforcement".
lint:
	go vet ./...
	go run ./cmd/ccsvm-lint ./...

fmt:
	gofmt -w $$(git ls-files '*.go')

bench:
	go run ./cmd/ccsvm-bench

stress:
	go run ./cmd/ccsvm-stress -seed 1 -ops 100000 -preset ccsvm-base

# The HTTP sweep service with a persistent result cache (see README
# "Serving sweeps").
serve:
	go run ./cmd/ccsvm-serve -cache-dir .ccsvm-cache
