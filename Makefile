# Developer entry points; CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: build test lint lint-report fmt bench stress serve

build:
	go build ./...

test:
	go test ./...

# The repository's own static-analysis suite (internal/lint, run by CI):
# determinism, pool-ownership, engine-context and hot-path invariants, plus
# //ccsvm: directive hygiene. See ARCHITECTURE.md "Static enforcement".
lint:
	go vet ./...
	go run ./cmd/ccsvm-lint ./...

# Machine-readable lint reports (JSON and SARIF 2.1.0) under lint-reports/.
# Both documents are always written — a clean run produces valid empty
# reports — and the target fails, after writing both, if there are findings,
# so CI can gate on it and still upload the artifacts.
lint-report:
	mkdir -p lint-reports
	status=0; \
	go run ./cmd/ccsvm-lint -format json ./... > lint-reports/ccsvm-lint.json || status=$$?; \
	go run ./cmd/ccsvm-lint -format sarif ./... > lint-reports/ccsvm-lint.sarif || status=$$?; \
	exit $$status

fmt:
	gofmt -w $$(git ls-files '*.go')

bench:
	go run ./cmd/ccsvm-bench

stress:
	go run ./cmd/ccsvm-stress -seed 1 -ops 100000 -preset ccsvm-base

# The HTTP sweep service with a persistent result cache (see README
# "Serving sweeps").
serve:
	go run ./cmd/ccsvm-serve -cache-dir .ccsvm-cache
